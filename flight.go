package avgi

import "sync"

// flight is one in-flight (or completed) campaign execution. done is
// closed when res is valid; late callers block on it instead of
// recomputing.
type flight struct {
	done chan struct{}
	res  []CampaignResult
}

// flightMap is a single-flight executor: at most one execution per key at
// a time, concurrent callers for the same key coalesce onto the leader's
// result. It is the shared core under both the Study scheduler (which
// retains completed flights as a study-lifetime cache) and the assessment
// service (which evicts them on completion — the journal is the durable
// cache there, and a long-running server must not grow its flight map
// without bound).
//
// Failure semantics: a flight whose exec panics is evicted before the
// panic propagates, so the key is never poisoned — the next caller
// re-executes instead of being handed the dead flight's nil result
// forever. Callers already coalesced onto the panicked flight do receive
// nil (they cannot re-enter exec without risking a thundering herd); nil
// from a coalesced wait therefore means "leader failed, retry".
type flightMap[K comparable] struct {
	mu      sync.Mutex
	flights map[K]*flight
	retain  bool
}

func newFlightMap[K comparable](retain bool) *flightMap[K] {
	return &flightMap[K]{flights: make(map[K]*flight), retain: retain}
}

// do executes exec under single-flight semantics for key and returns its
// result plus whether this caller coalesced onto another caller's
// execution (true) or ran exec itself (false).
func (m *flightMap[K]) do(key K, exec func() []CampaignResult) (res []CampaignResult, coalesced bool) {
	m.mu.Lock()
	if f, ok := m.flights[key]; ok {
		m.mu.Unlock()
		<-f.done
		return f.res, true
	}
	f := &flight{done: make(chan struct{})}
	m.flights[key] = f
	m.mu.Unlock()

	completed := false
	// Runs even when exec panics: evict first (under the lock, before the
	// done-channel close publishes the flight) so no later caller can
	// observe a failed or stale entry, then unblock coalesced waiters.
	defer func() {
		m.mu.Lock()
		if !completed || !m.retain {
			delete(m.flights, key)
		}
		m.mu.Unlock()
		close(f.done)
	}()
	f.res = exec()
	completed = true
	return f.res, false
}

// len reports the number of retained or in-flight entries (test hook).
func (m *flightMap[K]) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.flights)
}
