package avgi

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"avgi/internal/campaign"
)

// newJournalStudy builds the small scheduler-test study grid with the
// durable journal enabled.
func newJournalStudy(t *testing.T, dir string, resume bool, obsv *Observer) *Study {
	t.Helper()
	s, err := NewStudy(StudyConfig{
		Machine:            ConfigA72(),
		Workloads:          pick(t, schedWorkloads...),
		Structures:         schedStructures,
		FaultsPerStructure: schedFaults,
		Workers:            4,
		SeedBase:           7,
		Obs:                obsv,
		JournalDir:         dir,
		Resume:             resume,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runGrid executes the full exhaustive grid and returns results per pair.
func runGrid(s *Study) map[string][]CampaignResult {
	out := make(map[string][]CampaignResult)
	for _, structure := range schedStructures {
		for _, workload := range schedWorkloads {
			out[structure+"/"+workload] = s.Exhaustive(structure, workload)
		}
	}
	return out
}

// shardFiles returns every journal shard under dir, sorted by path.
func shardFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".ndjson") {
			files = append(files, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestStudyJournalResumeByteIdentical is the acceptance test of the
// fault-tolerance tentpole: a study whose process dies mid-run (simulated
// by mangling the journal exactly as a SIGKILL would leave it — one shard
// half written with a torn final line, one shard missing entirely) and is
// restarted with Resume reproduces byte-identical results and Summary/AVF
// output to an uninterrupted run, re-simulating only the un-journalled
// faults. The verify recipe runs this test under -race.
func TestStudyJournalResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple campaign grids in -short mode")
	}
	dir := t.TempDir()

	// The uninterrupted reference: same config, no journal at all.
	ref := runGrid(newSchedStudy(t, nil))

	// First run: journal everything, then simulate the SIGKILL by
	// mangling the shards on disk.
	runGrid(newJournalStudy(t, dir, false, nil))
	shards := shardFiles(t, dir)
	if len(shards) != len(schedStructures)*len(schedWorkloads) {
		t.Fatalf("journalled run left %d shards, want %d", len(shards), 4)
	}
	// Shard 0: cut mid-way through a record line (torn final write).
	data, err := os.ReadFile(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 1+schedFaults {
		t.Fatalf("shard %s has %d lines, want %d", shards[0], len(lines), 1+schedFaults)
	}
	keep := strings.Join(lines[:1+schedFaults/2], "\n") + "\n" + lines[1+schedFaults/2][:9]
	if err := os.WriteFile(shards[0], []byte(keep), 0o644); err != nil {
		t.Fatal(err)
	}
	// Shard 1: gone entirely (killed before its campaign started).
	if err := os.Remove(shards[1]); err != nil {
		t.Fatal(err)
	}

	// Restart with -resume.
	obsv := NewObserver(nil)
	resumed := runGrid(newJournalStudy(t, dir, true, obsv))
	for pair, want := range ref {
		if !reflect.DeepEqual(resumed[pair], want) {
			t.Errorf("pair %s: resumed results diverge from the uninterrupted run", pair)
		}
		s1, s2 := campaign.Summarize(want), campaign.Summarize(resumed[pair])
		if s1.String() != s2.String() {
			t.Errorf("pair %s: summary %q != %q", pair, s2, s1)
		}
	}

	reg := obsv.Metrics
	hits := counterValue(t, reg, "avgi_journal_hits_total", nil)
	res := counterValue(t, reg, "avgi_journal_resumed_faults_total", nil)
	app := counterValue(t, reg, "avgi_journal_appends_total", nil)
	// Two intact shards load wholesale; the torn one keeps its first
	// half-or-fewer records (worker chunks may straddle the cut, but at
	// least the fully-synced early chunks survive); the deleted one
	// contributes nothing.
	if hits != 2 {
		t.Errorf("journal hits = %d, want 2 full-shard hits", hits)
	}
	if res <= 2*schedFaults || res >= 3*schedFaults {
		t.Errorf("resumed faults = %d, want between %d and %d", res, 2*schedFaults, 3*schedFaults)
	}
	// Everything not resumed was re-simulated and re-journalled.
	if app != uint64(4*schedFaults)-res {
		t.Errorf("appends = %d, resumed = %d; must cover exactly the missing %d faults",
			app, res, uint64(4*schedFaults)-res)
	}

	// Third start: the journal is complete again, so every campaign is a
	// full hit and nothing simulates or appends.
	obsv2 := NewObserver(nil)
	final := runGrid(newJournalStudy(t, dir, true, obsv2))
	for pair, want := range ref {
		if !reflect.DeepEqual(final[pair], want) {
			t.Errorf("pair %s: fully journalled reload diverges", pair)
		}
	}
	if h := counterValue(t, obsv2.Metrics, "avgi_journal_hits_total", nil); h != 4 {
		t.Errorf("fully journalled restart: hits = %d, want 4", h)
	}
	if a := counterValue(t, obsv2.Metrics, "avgi_journal_appends_total", nil); a != 0 {
		t.Errorf("fully journalled restart: appends = %d, want 0", a)
	}
}

// TestStudyJournalSeedMismatch proves the checksummed header binding: a
// journal written under one seed must never be resumed into a study with
// another, silently or otherwise — the shards are distinct and the second
// study re-simulates from scratch.
func TestStudyJournalSeedMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign grids in -short mode")
	}
	dir := t.TempDir()
	s1 := newJournalStudy(t, dir, false, nil)
	first := s1.Exhaustive("RF", "sha")

	obsv := NewObserver(nil)
	s2, err := NewStudy(StudyConfig{
		Machine:            ConfigA72(),
		Workloads:          pick(t, "sha"),
		Structures:         []string{"RF"},
		FaultsPerStructure: schedFaults,
		Workers:            2,
		SeedBase:           8, // different seed: binding must not match
		Obs:                obsv,
		JournalDir:         dir,
		Resume:             true,
	})
	if err != nil {
		t.Fatal(err)
	}
	second := s2.Exhaustive("RF", "sha")
	if counterValue(t, obsv.Metrics, "avgi_journal_resumed_faults_total", nil) != 0 {
		t.Error("a different seed must not resume any journalled fault")
	}
	if reflect.DeepEqual(first, second) {
		t.Error("different seeds produced identical fault lists — test is vacuous")
	}
}

// TestStudyResumeRequiresJournal pins the config validation.
func TestStudyResumeRequiresJournal(t *testing.T) {
	_, err := NewStudy(StudyConfig{
		Machine:   ConfigA72(),
		Workloads: pick(t, "sha"),
		Resume:    true,
	})
	if err == nil || !strings.Contains(err.Error(), "JournalDir") {
		t.Fatalf("Resume without JournalDir must fail, got %v", err)
	}
}
