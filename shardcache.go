package avgi

import (
	"container/list"
	"sync"

	"avgi/internal/obs"
)

// shardCache is the service's in-memory decoded-shard LRU: the journal
// answers a repeated request with zero simulation, but still pays a disk
// read plus an NDJSON decode of the whole shard on every hit. Hot
// assessments (dashboards re-polling, fleets of workers racing the same
// announcement) hit the same few keys over and over, so the service keeps
// the most recent decoded result sets in memory and serves those hits
// without touching the journal at all.
//
// Entries are only ever inserted complete (every fault index present), and
// results are deterministic per key, so a cached entry can never go stale —
// eviction exists purely to bound memory. The cached slices are shared with
// callers, exactly as the flight map already shares one result slice among
// coalesced requests: they are treated as immutable throughout.
type shardCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[assessKey]*list.Element

	hits      *obs.Counter
	evictions *obs.Counter
}

type shardCacheEntry struct {
	key assessKey
	res []CampaignResult
}

// defaultShardCacheEntries bounds the decoded result sets kept in memory
// when ServiceConfig.ShardCacheEntries is zero. At the default 400-fault
// sample a full cache holds ~25k Results — small next to one golden trace.
const defaultShardCacheEntries = 64

// newShardCache returns an LRU of the given capacity; reg may be nil
// (metrics disabled). A nil *shardCache is a valid, always-missing cache.
func newShardCache(capacity int, reg *obs.Registry) *shardCache {
	c := &shardCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[assessKey]*list.Element),
	}
	if reg != nil {
		c.hits = reg.Counter("avgi_server_shard_cache_hits_total",
			"assessments served from the in-memory decoded-shard LRU (no journal read, no simulation)", nil)
		c.evictions = reg.Counter("avgi_server_shard_cache_evictions_total",
			"decoded shards evicted from the in-memory LRU to respect its capacity", nil)
	}
	return c
}

// get returns the cached complete result set for key, marking it most
// recently used.
func (c *shardCache) get(key assessKey) ([]CampaignResult, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	if c.hits != nil {
		c.hits.Inc()
	}
	return el.Value.(*shardCacheEntry).res, true
}

// put stores a complete result set, evicting the least recently used entry
// beyond capacity. Re-putting an existing key refreshes its recency (the
// results are deterministic, so the value cannot differ).
func (c *shardCache) put(key assessKey, res []CampaignResult) {
	if c == nil || len(res) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&shardCacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*shardCacheEntry).key)
		if c.evictions != nil {
			c.evictions.Inc()
		}
	}
}

// len reports the live entry count (tests).
func (c *shardCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
