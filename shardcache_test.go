package avgi

import (
	"testing"
)

func cacheKey(seed int64) assessKey {
	return assessKey{machine: "a72", structure: "RF", workload: "crc32",
		mode: ModeHVF, faults: 4, seed: seed}
}

func TestShardCacheLRU(t *testing.T) {
	c := newShardCache(2, nil)
	res := func(n int) []CampaignResult { return make([]CampaignResult, n) }

	if _, ok := c.get(cacheKey(1)); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.put(cacheKey(1), res(1))
	c.put(cacheKey(2), res(2))
	if got, ok := c.get(cacheKey(1)); !ok || len(got) != 1 {
		t.Fatalf("key 1: ok=%v len=%d", ok, len(got))
	}
	// Key 1 is now most recent; inserting key 3 must evict key 2.
	c.put(cacheKey(3), res(3))
	if _, ok := c.get(cacheKey(2)); ok {
		t.Error("LRU evicted the wrong entry (key 2 should be gone)")
	}
	if _, ok := c.get(cacheKey(1)); !ok {
		t.Error("recently used key 1 was evicted")
	}
	if _, ok := c.get(cacheKey(3)); !ok {
		t.Error("freshly inserted key 3 missing")
	}
	if c.len() != 2 {
		t.Errorf("cache holds %d entries, want 2", c.len())
	}

	// Empty result sets are never cached; a nil cache is a valid miss.
	c.put(cacheKey(4), nil)
	if _, ok := c.get(cacheKey(4)); ok {
		t.Error("empty result set was cached")
	}
	var nilCache *shardCache
	if _, ok := nilCache.get(cacheKey(1)); ok {
		t.Error("nil cache reported a hit")
	}
	nilCache.put(cacheKey(1), res(1)) // must not panic
}

// TestServiceShardCacheHit pins the memory tier: the second identical
// request is served from the decoded-shard LRU (counted on
// avgi_server_shard_cache_hits_total) with a byte-identical payload, and
// disabling the cache falls back to plain journal hits.
func TestServiceShardCacheHit(t *testing.T) {
	s := newTestService(t, t.TempDir())
	first, err := s.Assess(svcRequest())
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Assess(svcRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !second.Meta.JournalHit || second.Meta.SimulatedFaults != 0 {
		t.Fatalf("second request meta %+v, want a zero-simulation hit", second.Meta)
	}
	if resultBytes(t, first) != resultBytes(t, second) {
		t.Error("cache-served payload differs from the simulated one")
	}
	reg := s.Cfg.Obs.Metrics
	hits := reg.Counter("avgi_server_shard_cache_hits_total", "", nil).Value()
	if hits != 1 {
		t.Errorf("avgi_server_shard_cache_hits_total = %d, want 1", hits)
	}

	// Cache disabled: the repeat request must still be a (journal) hit,
	// with the LRU out of the picture.
	s2, err := NewService(ServiceConfig{
		Workers: 4, JournalDir: s.Cfg.JournalDir, ShardCacheEntries: -1,
		Obs: NewObserver(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if s2.shards != nil {
		t.Fatal("ShardCacheEntries < 0 must disable the cache")
	}
	third, err := s2.Assess(svcRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !third.Meta.JournalHit {
		t.Errorf("journal-only service meta %+v, want a journal hit", third.Meta)
	}
	if resultBytes(t, first) != resultBytes(t, third) {
		t.Error("journal-served payload differs from the simulated one")
	}
}

// TestServiceShardCacheEviction fills the LRU past capacity and checks the
// eviction counter moves while hits keep being served for live keys.
func TestServiceShardCacheEviction(t *testing.T) {
	s, err := NewService(ServiceConfig{
		Workers: 2, JournalDir: t.TempDir(), ShardCacheEntries: 2,
		Obs: NewObserver(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		req := svcRequest()
		req.Seed = seed
		if _, err := s.Assess(req); err != nil {
			t.Fatal(err)
		}
	}
	if s.shards.len() != 2 {
		t.Errorf("cache holds %d entries, want capacity 2", s.shards.len())
	}
	ev := s.Cfg.Obs.Metrics.Counter("avgi_server_shard_cache_evictions_total", "", nil).Value()
	if ev != 1 {
		t.Errorf("avgi_server_shard_cache_evictions_total = %d, want 1", ev)
	}
}

// benchAssessHit measures the repeat-request latency of one service tier:
// the decoded-shard memory LRU versus the journal (disk read + NDJSON
// decode per hit). BENCH_distributed.json records the ratio.
func benchAssessHit(b *testing.B, cacheEntries int) {
	s, err := NewService(ServiceConfig{
		Workers: 4, JournalDir: b.TempDir(), ShardCacheEntries: cacheEntries,
	})
	if err != nil {
		b.Fatal(err)
	}
	req := svcRequest()
	req.Faults = 400 // realistic shard size: the default sample
	if _, err := s.Assess(req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Assess(req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Meta.JournalHit {
			b.Fatalf("repeat request was not a hit: %+v", resp.Meta)
		}
	}
}

func BenchmarkAssessShardCacheHit(b *testing.B) { benchAssessHit(b, 0) }
func BenchmarkAssessJournalHit(b *testing.B)    { benchAssessHit(b, -1) }
