// Case study on a different ISA and microarchitecture (paper Section VI):
// the same methodology on the 32-bit Armv7-like machine (Cortex-A15-class
// configuration). The register file's AVGI speedup is larger here than on
// the 64-bit machine, as the paper observes (440x vs 337x in their setup),
// because manifestation latencies shrink relative to execution time.
//
//	go run ./examples/casestudy32
package main

import (
	"fmt"
	"log"
	"math"

	"avgi"
	"avgi/internal/campaign"
)

func main() {
	var wls []avgi.Workload
	for _, n := range []string{"sha", "crc32", "bitcount", "stringsearch"} {
		w, err := avgi.WorkloadByName(n)
		if err != nil {
			log.Fatal(err)
		}
		wls = append(wls, w)
	}

	study, err := avgi.NewStudy(avgi.StudyConfig{
		Machine:            avgi.ConfigA15(),
		Workloads:          wls,
		Structures:         []string{"RF", "L1I (Data)", "L1D (Data)"},
		FaultsPerStructure: 120,
		SeedBase:           5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %s (%s, %d-bit, %d arch regs)\n\n",
		study.Cfg.Machine.Name, study.Cfg.Machine.Variant,
		study.Cfg.Machine.Variant.Width(), study.Cfg.Machine.Variant.NumArchRegs())

	fmt.Printf("%-12s %-14s %10s %10s %10s %10s\n",
		"structure", "workload", "real AVF", "AVGI AVF", "|diff|", "speedup")
	for _, structure := range study.Cfg.Structures {
		for _, wl := range study.WorkloadNames() {
			truth := study.GroundTruthAVF(structure, wl)
			looEst := study.TrainEstimator(wl)
			results, window := study.AVGIRun(looEst, structure, wl)
			a := looEst.AssessResults(study.Runner(wl), structure, results, window)
			ex := campaign.Summarize(study.Exhaustive(structure, wl))
			av := campaign.Summarize(results)
			speed := float64(ex.SimCycles) / math.Max(1, float64(av.SimCycles))
			fmt.Printf("%-12s %-14s %9.1f%% %9.1f%% %9.1f%% %9.1fx\n",
				structure, wl, truth.Total()*100, a.AVF.Total()*100,
				math.Abs(a.AVF.Total()-truth.Total())*100, speed)
		}
	}
}
