// Motivation: why microarchitecture-driven assessment at all? This example
// reproduces the pitfall the paper opens with (demonstrated in the
// authors' ISCA 2021 study): architecture-level fault injection — flipping
// bits in architectural registers of a functional execution — is fast, but
// every fault it injects is architecturally visible by construction. It
// never sees the hardware masking that absorbs most real upsets (free
// physical registers, overwrites, squashed wrong-path state), so the
// vulnerability it reports diverges from the true AVF, and protection
// decisions based on it aim at the wrong structures.
//
//	go run ./examples/motivation
package main

import (
	"fmt"
	"log"

	"avgi"
	"avgi/internal/campaign"
	"avgi/internal/core"
)

func main() {
	cfg := avgi.ConfigA72()
	const n = 150

	fmt.Printf("%-14s %14s %14s %14s\n", "workload", "ISA-level PVF", "microarch AVF", "overestimate")
	for _, name := range []string{"sha", "crc32", "bitcount", "qsort", "dijkstra"} {
		arch, err := avgi.ArchLevelCampaign(cfg, name, n, 1)
		if err != nil {
			log.Fatal(err)
		}
		r, err := avgi.NewRunner(cfg, name)
		if err != nil {
			log.Fatal(err)
		}
		res := r.Run(r.FaultList("RF", n, 1), avgi.ModeExhaustive, 0, 0)
		avf := core.AVFFromEffects(campaign.Summarize(res))
		ratio := 0.0
		if avf.Total() > 0 {
			ratio = arch.PVF() / avf.Total()
		}
		fmt.Printf("%-14s %13.1f%% %13.1f%% %13.1fx\n",
			name, arch.PVF()*100, avf.Total()*100, ratio)
	}
	fmt.Println("\nISA-level injection misses hardware masking entirely; using its numbers")
	fmt.Println("to prioritise protection would over-protect the register file and")
	fmt.Println("under-protect structures whose faults it cannot even represent.")
}
