// Protection planning: the design-space use-case from the paper's
// introduction. A reliability engineer has a FIT budget for the whole CPU
// and must decide which hardware structures need ECC/parity protection.
// Wrong AVF numbers steer protection to the wrong arrays — which is exactly
// why the paper insists on microarchitecture-driven assessment.
//
// This example measures per-structure FIT rates on a workload mix, ranks
// the structures, and greedily protects the highest contributors until the
// residual chip FIT meets the budget.
//
//	go run ./examples/protection
package main

import (
	"fmt"
	"log"
	"sort"

	"avgi"
	"avgi/internal/campaign"
	"avgi/internal/core"
)

// Budget: residual chip FIT after protection must fall below this.
const fitBudget = 0.02

func main() {
	// A small mix: one compute-bound, one memory-bound, one large-output
	// workload. Increase the list and fault count for production use.
	workloads := []string{"sha", "dijkstra", "qsort"}
	structures := avgi.Structures()
	const faults = 150

	type entry struct {
		structure string
		bits      uint64
		fit       core.FIT
	}
	var entries []entry

	cfg := avgi.ConfigA72()
	for _, structure := range structures {
		var sum core.FIT
		var bits uint64
		for _, wl := range workloads {
			r, err := avgi.NewRunner(cfg, wl)
			if err != nil {
				log.Fatal(err)
			}
			bits = r.BitCounts[structure]
			res := r.Run(r.FaultList(structure, faults, 1), avgi.ModeExhaustive, 0, 0)
			avf := core.AVFFromEffects(campaign.Summarize(res))
			sum = sum.Add(core.FITOf(avf, bits))
		}
		n := float64(len(workloads))
		entries = append(entries, entry{
			structure: structure,
			bits:      bits,
			fit:       core.FIT{SDC: sum.SDC / n, Crash: sum.Crash / n},
		})
	}

	sort.Slice(entries, func(i, j int) bool {
		return entries[i].fit.Total() > entries[j].fit.Total()
	})

	var chip core.FIT
	for _, e := range entries {
		chip = chip.Add(e.fit)
	}
	fmt.Printf("unprotected chip FIT: %.4f (budget %.2f)\n\n", chip.Total(), fitBudget)
	fmt.Printf("%-12s %8s %12s %12s %10s\n", "structure", "bits", "FIT(SDC)", "FIT(Crash)", "share")
	for _, e := range entries {
		fmt.Printf("%-12s %8d %12.4f %12.4f %9.1f%%\n",
			e.structure, e.bits, e.fit.SDC, e.fit.Crash,
			100*e.fit.Total()/chip.Total())
	}

	fmt.Println("\nprotection plan (greedy, highest FIT first):")
	residual := chip.Total()
	for _, e := range entries {
		if residual <= fitBudget {
			break
		}
		residual -= e.fit.Total()
		fmt.Printf("  protect %-12s -> residual chip FIT %.4f\n", e.structure, residual)
	}
	if residual <= fitBudget {
		fmt.Printf("budget met: residual %.4f <= %.2f\n", residual, fitBudget)
	} else {
		fmt.Printf("budget NOT met even with full protection (%.4f)\n", residual)
	}
}
