// New-workload assessment: the paper's headline scenario. The expensive
// exhaustive campaigns run once, on a set of training workloads, to learn
// the per-structure IMM weights, the ESC calibration, and the ERT windows.
// A workload the methodology has never seen is then assessed with short
// AVGI runs only — and the estimate is compared against its exhaustive
// ground truth.
//
//	go run ./examples/newworkload
package main

import (
	"fmt"
	"log"
	"math"

	"avgi"
)

func main() {
	const target = "crc32" // the "unknown" workload
	training := []string{"sha", "bitcount", "qsort", "stringsearch"}

	var wls []avgi.Workload
	for _, n := range append(append([]string{}, training...), target) {
		w, err := avgi.WorkloadByName(n)
		if err != nil {
			log.Fatal(err)
		}
		wls = append(wls, w)
	}

	study, err := avgi.NewStudy(avgi.StudyConfig{
		Machine:            avgi.ConfigA72(),
		Workloads:          wls,
		Structures:         []string{"RF", "L1I (Data)", "L1D (Data)", "ROB"},
		FaultsPerStructure: 150,
		SeedBase:           11,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("training on %v (exhaustive campaigns)...\n", training)
	est := study.TrainEstimator(target) // leave the target out

	fmt.Printf("\nassessing unseen workload %q with AVGI runs only:\n\n", target)
	fmt.Printf("%-12s %10s %10s %10s %10s %12s\n",
		"structure", "est AVF", "true AVF", "|diff|", "window", "cost ratio")
	for _, structure := range study.Cfg.Structures {
		results, window := study.AVGIRun(est, structure, target)
		a := est.AssessResults(study.Runner(target), structure, results, window)
		truth := study.GroundTruthAVF(structure, target)

		var exCost, avgiCost uint64
		for _, r := range study.Exhaustive(structure, target) {
			exCost += r.SimCycles
		}
		for _, r := range results {
			avgiCost += r.SimCycles
		}
		ratio := float64(exCost) / math.Max(1, float64(avgiCost))
		fmt.Printf("%-12s %9.1f%% %9.1f%% %9.1f%% %10d %11.1fx\n",
			structure, a.AVF.Total()*100, truth.Total()*100,
			math.Abs(a.AVF.Total()-truth.Total())*100, window, ratio)
	}
	fmt.Println("\n(ground truth shown only for validation — the methodology never ran it)")
}
