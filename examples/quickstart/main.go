// Quickstart: run one workload on the 64-bit machine model, inject a small
// statistical fault sample into the physical register file, and compare the
// exhaustive (traditional SFI) answer with what the stop-at-manifestation
// view observes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"avgi"
	"avgi/internal/campaign"
)

func main() {
	cfg := avgi.ConfigA72()
	r, err := avgi.NewRunner(cfg, "sha")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run: %d cycles, %d commits, %d output bytes\n",
		r.Golden.Cycles, r.Golden.Commits, len(r.Golden.Output))

	// Phase 1 (configuration): a uniform 200-fault sample over the
	// register file's (bit, cycle) space.
	const n = 200
	faults := r.FaultList("RF", n, 1)
	margin := avgi.ErrorMargin(n, r.BitCounts["RF"]*r.Golden.Cycles, avgi.Z95)
	fmt.Printf("sample: %d faults over %d bits x %d cycles (±%.1f%% at 95%%)\n",
		n, r.BitCounts["RF"], r.Golden.Cycles, margin*100)

	// Traditional SFI: every run simulates to the end of the program.
	exhaustive := r.Run(faults, avgi.ModeExhaustive, 0, 0)
	ex := campaign.Summarize(exhaustive)
	fmt.Printf("\nexhaustive SFI (%d simulated cycles):\n", ex.SimCycles)
	fmt.Printf("  Masked %d   SDC %d   Crash %d\n",
		ex.ByEffect[0], ex.ByEffect[1], ex.ByEffect[2])
	fmt.Printf("  IMM classes among corruptions: %v\n", ex.ByIMM)

	// The AVGI observation: stop each run at the first commit-trace
	// deviation or a short residency window — orders of magnitude fewer
	// simulated cycles, same manifestation information.
	avgiRes := r.Run(faults, avgi.ModeAVGI, 2_000, 0)
	av := campaign.Summarize(avgiRes)
	fmt.Printf("\nAVGI observation window (%d simulated cycles, %.1fx fewer):\n",
		av.SimCycles, float64(ex.SimCycles)/float64(av.SimCycles))
	fmt.Printf("  corruptions %d, benign %d\n", av.Corruptions, av.Benign)
	fmt.Println("\nsee examples/newworkload for the full trained-weights methodology")
}
