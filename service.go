package avgi

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"avgi/internal/campaign"
	"avgi/internal/core"
	"avgi/internal/journal"
	"avgi/internal/obs"
	"avgi/internal/prog"
)

// This file is the assessment service core behind cmd/avgid: a
// long-running, concurrently callable façade over the same single-flight
// executor and durable journal the Study scheduler uses, generalised to
// requests that vary machine, fault count and seed instead of a fixed
// study grid. See docs/SERVICE.md.
//
// The cache hierarchy a request falls through:
//
//  1. Journal (durable): a fully journalled (structure, workload, mode,
//     window) shard under the request's (machine, seed, faults) namespace
//     answers with zero simulation via a strictly read-only Load.
//  2. Flight map (in-flight): concurrent identical requests coalesce onto
//     one execution. Unlike the Study (which retains flights for its
//     lifetime over a bounded grid), service flights are evicted on
//     completion — the journal is the durable cache, and a server that
//     retained every distinct request ever seen would grow without bound.
//  3. Simulation: the campaign runs under the requesting tenant's carved
//     budget share and appends to the journal as chunks complete, so the
//     next identical request is a pure cache hit.

// ServiceConfig parameterises an assessment service.
type ServiceConfig struct {
	// Workers is the global worker budget shared by every campaign the
	// service runs (0 = all CPUs).
	Workers int

	// TenantWorkers caps how many of the global workers one tenant's
	// campaigns may hold at once. 0 derives max(1, 3/4·Workers), always
	// clamped to Workers-1 when Workers >= 2 so a single tenant can never
	// hold the entire budget — the no-starvation guarantee (see
	// campaign.Budget.Carve).
	TenantWorkers int

	// JournalDir enables the durable result cache: campaigns append to
	// NDJSON shards namespaced by (machine, seed, faults) under this
	// directory, and fully journalled requests are answered without
	// simulating. Empty disables caching (every miss simulates).
	JournalDir string

	// ShardCacheEntries sizes the in-memory decoded-shard LRU in front of
	// the journal: repeated identical requests are answered from memory
	// without re-reading and re-decoding the NDJSON shard. 0 defaults to
	// 64 entries; negative disables the cache. Only meaningful with
	// JournalDir set (the cache fronts the durable journal).
	ShardCacheEntries int

	// Fsync selects the journal shard fsync cadence: SyncChunk (default),
	// SyncEvery or SyncOff. See docs/ROBUSTNESS.md.
	Fsync SyncPolicy

	// Dist, when non-nil with Fleet > 0, runs every campaign this service
	// simulates as the node's share of a distributed fleet (requires
	// JournalDir). See docs/DISTRIBUTED.md.
	Dist *DistConfig

	// Obs receives service telemetry: avgi_server_* metrics, campaign
	// progress, spans and the journal counters. See docs/OBSERVABILITY.md.
	Obs *Observer
}

// AssessRequest is one assessment job — the JSON body of POST /v1/assess.
type AssessRequest struct {
	// Machine selects the microarchitecture: "a72" (64-bit, default) or
	// "a15" (32-bit).
	Machine string `json:"machine,omitempty"`
	// Structure is the fault target (Table II name, e.g. "RF").
	Structure string `json:"structure"`
	// Workload is the benchmark name (e.g. "sha").
	Workload string `json:"workload"`
	// Mode is "exhaustive", "hvf" or "avgi".
	Mode string `json:"mode"`
	// Window is the ERT stop window in cycles; required for mode "avgi",
	// forbidden otherwise.
	Window uint64 `json:"window,omitempty"`
	// Faults is the statistical sample size (default 400).
	Faults int `json:"faults,omitempty"`
	// Seed makes the fault sample reproducible (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Tenant attributes the request to a worker-budget share; empty means
	// the "default" tenant.
	Tenant string `json:"tenant,omitempty"`
}

// AssessResult is the cache-independent payload of a response: two
// requests for the same assessment must marshal to byte-identical
// AssessResults whether they were simulated, journal hits or coalesced.
type AssessResult struct {
	Results []CampaignResult `json:"results"`
	Summary CampaignSummary  `json:"summary"`
	AVF     AVF              `json:"avf"`
}

// AssessMeta describes how one request was served; it varies between
// cache hits and misses and therefore lives outside AssessResult.
type AssessMeta struct {
	// JournalHit is true when the request was answered entirely from the
	// durable journal with zero simulation.
	JournalHit bool `json:"journalHit"`
	// Coalesced is true when this request rode an identical in-flight
	// request's execution (its SimulatedFaults/ResumedFaults are reported
	// as zero: the work was accounted to the leader).
	Coalesced bool `json:"coalesced"`
	// SimulatedFaults counts faults actually simulated for this request;
	// ResumedFaults counts results reused from the journal.
	SimulatedFaults int `json:"simulatedFaults"`
	ResumedFaults   int `json:"resumedFaults"`
	// Tenant is the budget share the request drew from.
	Tenant string `json:"tenant"`
	// ElapsedMS is the wall-clock service time.
	ElapsedMS float64 `json:"elapsedMs"`
}

// AssessResponse is the full answer to one assessment request.
type AssessResponse struct {
	ID      uint64        `json:"id"`
	Request AssessRequest `json:"request"` // normalised (defaults filled)
	Result  AssessResult  `json:"result"`
	Meta    AssessMeta    `json:"meta"`
}

// RequestState tracks a request through the service.
type RequestState string

const (
	StateRunning RequestState = "running"
	StateDone    RequestState = "done"
	StateFailed  RequestState = "failed"
)

// RequestInfo is one entry of the service's request registry — the JSON
// rows of GET /v1/requests.
type RequestInfo struct {
	ID        uint64        `json:"id"`
	Request   AssessRequest `json:"request"`
	State     RequestState  `json:"state"`
	StartedAt time.Time     `json:"startedAt"`
	EndedAt   *time.Time    `json:"endedAt,omitempty"`
	Error     string        `json:"error,omitempty"`
}

// assessKey identifies one deduplicatable assessment execution. Unlike the
// Study's campaignKey it carries machine, sample size and seed, because
// service requests vary them per call.
type assessKey struct {
	machine   string
	structure string
	workload  string
	mode      Mode
	window    uint64
	faults    int
	seed      int64
}

// serviceObs holds the avgid-specific instruments (nil-safe when the
// service has no metrics registry).
type serviceObs struct {
	reg      *obs.Registry
	inflight *obs.Gauge
	seconds  *obs.Histogram
}

func (so *serviceObs) request(tenant, outcome string) {
	if so.reg == nil {
		return
	}
	so.reg.Counter("avgi_server_requests_total",
		"assessment requests by tenant and outcome (hit, miss, coalesced, error)",
		map[string]string{"tenant": tenant, "outcome": outcome}).Inc()
}

func (so *serviceObs) observe(d time.Duration) {
	if so.seconds != nil {
		so.seconds.Observe(d.Seconds())
	}
}

// Service is a long-running assessment engine: Assess may be called from
// any number of goroutines (one per HTTP request in cmd/avgid).
type Service struct {
	Cfg ServiceConfig

	budget  *campaign.Budget
	flights *flightMap[assessKey]
	shards  *shardCache // nil when disabled
	sched   schedObs
	srv     serviceObs

	mu       sync.Mutex
	runners  map[string]*runnerSlot      // (machine, workload) -> lazy golden
	tenants  map[string]*campaign.Budget // tenant -> carved share
	journals map[string]*journal.Journal // (machine, seed, faults) namespace
	requests map[uint64]*RequestInfo
	order    []uint64 // registry insertion order, for pruning
	nextID   uint64
}

type runnerSlot struct {
	once sync.Once
	r    *Runner
	err  error
}

// maxFaultsPerRequest bounds the sample size a single request may demand.
const maxFaultsPerRequest = 100_000

// doneRequestsRetained bounds the registry: completed entries beyond this
// count are pruned oldest-first (running entries are never pruned).
const doneRequestsRetained = 256

// NewService builds the shared state; golden runs happen lazily on the
// first request that needs each (machine, workload).
func NewService(cfg ServiceConfig) (*Service, error) {
	s := &Service{
		Cfg:      cfg,
		budget:   campaign.NewBudget(cfg.Workers),
		flights:  newFlightMap[assessKey](false),
		runners:  make(map[string]*runnerSlot),
		tenants:  make(map[string]*campaign.Budget),
		journals: make(map[string]*journal.Journal),
		requests: make(map[uint64]*RequestInfo),
	}
	if cfg.JournalDir != "" {
		// Fail now, not on the first request, if the cache root is unusable.
		if _, err := journal.Open(cfg.JournalDir); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	if cfg.Dist != nil && cfg.Dist.Fleet > 0 && cfg.JournalDir == "" {
		return nil, fmt.Errorf("service: distributed campaigns require JournalDir (the shared coordination substrate)")
	}
	if cfg.JournalDir != "" && cfg.ShardCacheEntries >= 0 {
		entries := cfg.ShardCacheEntries
		if entries == 0 {
			entries = defaultShardCacheEntries
		}
		var reg *obs.Registry
		if cfg.Obs != nil {
			reg = cfg.Obs.Metrics
		}
		s.shards = newShardCache(entries, reg)
	}
	if o := cfg.Obs; o != nil && o.Metrics != nil {
		reg := o.Metrics
		reg.Gauge("avgi_server_budget_capacity",
			"global worker budget shared by all tenants", nil).
			Set(float64(s.budget.Cap()))
		s.budget.SetGauge(reg.Gauge("avgi_server_budget_busy",
			"workers currently held across all tenants", nil))
		s.srv.reg = reg
		s.srv.inflight = reg.Gauge("avgi_server_inflight_requests",
			"assessment requests currently being served", nil)
		s.srv.seconds = reg.Histogram("avgi_server_request_seconds",
			"assessment request service time",
			[]float64{0.001, 0.01, 0.1, 1, 10, 60, 600}, nil)
		s.sched.register(reg, "service", cfg.JournalDir != "")
	}
	return s, nil
}

// TenantCap reports the per-tenant worker cap in force.
func (s *Service) TenantCap() int {
	w := s.budget.Cap()
	cap := s.Cfg.TenantWorkers
	if cap <= 0 {
		cap = (3*w + 3) / 4
	}
	if w >= 2 && cap >= w {
		cap = w - 1
	}
	if cap < 1 {
		cap = 1
	}
	return cap
}

// Budget returns the global worker budget (test hook).
func (s *Service) Budget() *campaign.Budget { return s.budget }

func (s *Service) tenantBudget(tenant string) *campaign.Budget {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.tenants[tenant]; ok {
		return b
	}
	b := s.budget.Carve(s.TenantCap())
	if s.srv.reg != nil {
		b.SetGauge(s.srv.reg.Gauge("avgi_server_tenant_busy",
			"workers currently held by one tenant", map[string]string{"tenant": tenant}))
	}
	s.tenants[tenant] = b
	return b
}

// runner returns (building on first use) the golden-run state for one
// (machine, workload); concurrent requests share a single golden run.
func (s *Service) runner(machine, workload string) (*Runner, error) {
	rk := machine + "/" + workload
	s.mu.Lock()
	slot, ok := s.runners[rk]
	if !ok {
		slot = &runnerSlot{}
		s.runners[rk] = slot
	}
	s.mu.Unlock()
	slot.once.Do(func() {
		cfg := machineConfig(machine)
		w, err := prog.ByName(workload)
		if err != nil {
			slot.err = err
			return
		}
		sp := s.Cfg.Obs.Span("golden "+workload, "golden",
			map[string]string{"machine": cfg.Name, "workload": workload})
		r, err := campaign.NewRunner(cfg, w.Build(cfg.Variant))
		sp.End()
		if err != nil {
			slot.err = fmt.Errorf("golden %s/%s: %w", machine, workload, err)
			return
		}
		r.Obs = s.Cfg.Obs
		slot.r = r
	})
	return slot.r, slot.err
}

// journalFor returns the journal namespace for one (machine, seed, faults)
// configuration, or nil when caching is disabled. Namespacing keeps shard
// bindings stable: without it, requests differing only in seed or sample
// size would alternately truncate each other's shards (the shard path is
// derived from structure/workload/mode/window alone).
func (s *Service) journalFor(machine string, seed int64, faults int) *journal.Journal {
	if s.Cfg.JournalDir == "" {
		return nil
	}
	ns := fmt.Sprintf("%s-seed%d-n%d", machine, seed, faults)
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.journals[ns]; ok {
		return j
	}
	j, err := journal.Open(filepath.Join(s.Cfg.JournalDir, ns))
	if err != nil {
		// Best-effort cache: a broken namespace degrades to simulation.
		s.Cfg.Obs.Logf("service: journal namespace %s: %v; requests will run uncached", ns, err)
		if s.sched.jErrors != nil {
			s.sched.jErrors.Inc()
		}
		s.journals[ns] = nil
		return nil
	}
	s.journals[ns] = j
	return j
}

func machineConfig(machine string) MachineConfig {
	if machine == "a15" {
		return ConfigA15()
	}
	return ConfigA72()
}

func parseMode(mode string) (Mode, error) {
	switch strings.ToLower(mode) {
	case "exhaustive":
		return ModeExhaustive, nil
	case "hvf":
		return ModeHVF, nil
	case "avgi":
		return ModeAVGI, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want exhaustive, hvf or avgi)", mode)
}

// normalize validates a request and fills its defaults; the normalised
// request is echoed in the response so clients see what actually ran.
func (s *Service) normalize(req AssessRequest) (AssessRequest, assessKey, error) {
	var key assessKey
	switch strings.ToLower(req.Machine) {
	case "", "a72":
		req.Machine = "a72"
	case "a15":
		req.Machine = "a15"
	default:
		return req, key, fmt.Errorf("unknown machine %q (want a72 or a15)", req.Machine)
	}
	if err := validateStructure(req.Structure); err != nil {
		return req, key, err
	}
	if _, err := prog.ByName(req.Workload); err != nil {
		return req, key, err
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		return req, key, err
	}
	req.Mode = mode.String()
	if mode == ModeAVGI && req.Window == 0 {
		return req, key, fmt.Errorf("mode avgi requires a nonzero window")
	}
	if mode != ModeAVGI && req.Window != 0 {
		return req, key, fmt.Errorf("window is only meaningful in mode avgi")
	}
	if req.Faults == 0 {
		req.Faults = 400
	}
	if req.Faults < 0 || req.Faults > maxFaultsPerRequest {
		return req, key, fmt.Errorf("faults %d outside [1, %d]", req.Faults, maxFaultsPerRequest)
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	key = assessKey{
		machine: req.Machine, structure: req.Structure, workload: req.Workload,
		mode: mode, window: req.Window, faults: req.Faults, seed: req.Seed,
	}
	return req, key, nil
}

func (s *Service) registerRequest(req AssessRequest) *RequestInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	info := &RequestInfo{ID: s.nextID, Request: req, State: StateRunning, StartedAt: time.Now()}
	s.requests[info.ID] = info
	s.order = append(s.order, info.ID)
	// Prune oldest completed entries beyond the retention bound.
	done := 0
	for _, id := range s.order {
		if r := s.requests[id]; r != nil && r.State != StateRunning {
			done++
		}
	}
	for i := 0; done > doneRequestsRetained && i < len(s.order); i++ {
		id := s.order[i]
		if r := s.requests[id]; r != nil && r.State != StateRunning {
			delete(s.requests, id)
			s.order[i] = 0
			done--
		}
	}
	return info
}

func (s *Service) finishRequest(info *RequestInfo, state RequestState, errMsg string) {
	now := time.Now()
	s.mu.Lock()
	info.State = state
	info.EndedAt = &now
	info.Error = errMsg
	s.mu.Unlock()
}

// Requests snapshots the registry, newest first.
func (s *Service) Requests() []RequestInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RequestInfo, 0, len(s.requests))
	for i := len(s.order) - 1; i >= 0; i-- {
		if r := s.requests[s.order[i]]; r != nil {
			out = append(out, *r)
		}
	}
	return out
}

// Request returns one registry entry by ID.
func (s *Service) Request(id uint64) (RequestInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.requests[id]; ok {
		return *r, true
	}
	return RequestInfo{}, false
}

// Assess serves one assessment request: journal hit, coalesce, or
// simulate under the tenant's budget share — in that order of preference.
// It is safe for concurrent use.
func (s *Service) Assess(req AssessRequest) (resp *AssessResponse, err error) {
	norm, key, err := s.normalize(req)
	if err != nil {
		s.srv.request(orDefault(req.Tenant), "error")
		return nil, err
	}
	// Memory tier: a decoded-shard LRU hit answers without the runner, the
	// journal or the flight map — no golden run, no disk read, no decode.
	if cached, ok := s.shards.get(key); ok {
		info := s.registerRequest(norm)
		start := time.Now()
		s.finishRequest(info, StateDone, "")
		s.srv.request(norm.Tenant, "hit")
		sum := campaign.Summarize(cached)
		s.srv.observe(time.Since(start))
		return &AssessResponse{
			ID:      info.ID,
			Request: norm,
			Result:  AssessResult{Results: cached, Summary: sum, AVF: core.AVFFromEffects(sum)},
			Meta: AssessMeta{
				JournalHit:    true,
				ResumedFaults: len(cached),
				Tenant:        norm.Tenant,
				ElapsedMS:     float64(time.Since(start).Microseconds()) / 1000,
			},
		}, nil
	}

	r, err := s.runner(norm.Machine, norm.Workload)
	if err != nil {
		s.srv.request(norm.Tenant, "error")
		return nil, err
	}

	info := s.registerRequest(norm)
	start := time.Now()
	if s.srv.inflight != nil {
		s.srv.inflight.Add(1)
		defer s.srv.inflight.Add(-1)
	}
	defer func() {
		s.srv.observe(time.Since(start))
		if p := recover(); p != nil {
			s.finishRequest(info, StateFailed, fmt.Sprint(p))
			s.srv.request(norm.Tenant, "error")
			panic(p) // let cmd/avgid's handler turn it into a 500
		}
		if err != nil {
			s.finishRequest(info, StateFailed, err.Error())
			s.srv.request(norm.Tenant, "error")
		} else {
			s.finishRequest(info, StateDone, "")
		}
	}()

	faults := r.FaultList(norm.Structure, norm.Faults, norm.Seed)
	je := &journalExec{
		journal: s.journalFor(norm.Machine, norm.Seed, norm.Faults),
		resume:  true,
		machine: machineConfig(norm.Machine).Name,
		variant: machineConfig(norm.Machine).Variant.String(),
		seed:    norm.Seed,
		sync:    s.Cfg.Fsync,
		dist:    s.Cfg.Dist,
		obs:     s.Cfg.Obs,
		sched:   &s.sched,
	}

	var resumed int
	var res []CampaignResult
	var coalesced bool
	for attempt := 0; ; attempt++ {
		res, coalesced = s.flights.do(key, func() []CampaignResult {
			out, re := je.run(r, norm.Structure, norm.Workload, faults,
				parseModeMust(norm.Mode), norm.Window, s.tenantBudget(norm.Tenant))
			resumed = re
			return out
		})
		if res != nil || !coalesced || attempt >= 1 {
			break
		}
		// nil from a coalesced wait means the leader panicked and was
		// evicted; retry once as (most likely) the new leader so this
		// request surfaces the real failure instead of an opaque nil.
	}
	if res == nil {
		return nil, fmt.Errorf("assessment failed: coalesced execution returned no results")
	}
	// Whatever tier answered, the result set is now complete and durable
	// (or deterministic-reproducible); keep it decoded for the next hit.
	s.shards.put(key, res)

	outcome := "miss"
	meta := AssessMeta{Tenant: norm.Tenant}
	switch {
	case coalesced:
		outcome = "coalesced"
		meta.Coalesced = true
	case resumed == len(faults) && len(faults) > 0:
		outcome = "hit"
		meta.JournalHit = true
		meta.ResumedFaults = resumed
	default:
		meta.ResumedFaults = resumed
		meta.SimulatedFaults = len(faults) - resumed
	}
	s.srv.request(norm.Tenant, outcome)
	meta.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000

	sum := campaign.Summarize(res)
	return &AssessResponse{
		ID:      info.ID,
		Request: norm,
		Result:  AssessResult{Results: res, Summary: sum, AVF: core.AVFFromEffects(sum)},
		Meta:    meta,
	}, nil
}

func orDefault(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

// parseModeMust converts an already-normalised mode string.
func parseModeMust(mode string) Mode {
	m, err := parseMode(mode)
	if err != nil {
		panic(err)
	}
	return m
}
