package avgi

import (
	"time"

	"avgi/internal/dist"
	"avgi/internal/journal"
)

// SyncPolicy selects the journal shard fsync cadence (the -fsync flag):
// SyncChunk (default) fsyncs once per completed chunk, SyncEvery fsyncs
// every appended record — the distributed-worker setting, bounding another
// node's takeover loss to one fault — and SyncOff only flushes, trading
// crash durability for throughput on scratch journals. See docs/ROBUSTNESS.md.
type SyncPolicy = journal.SyncPolicy

const (
	SyncChunk = journal.SyncChunk
	SyncEvery = journal.SyncEvery
	SyncOff   = journal.SyncOff
)

// ParseSyncPolicy parses "chunk", "every" or "off".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return journal.ParseSyncPolicy(s) }

// DistConfig opts a Study or Service into the distributed campaign layer:
// every campaign runs as this node's share of a fleet that shards the fault
// list chunk-by-chunk across processes, coordinating through lease files in
// the shared journal directory (or a coordinator's lease endpoint) and
// merging each node's journalled part shard into a byte-identical canonical
// shard. See docs/DISTRIBUTED.md.
type DistConfig struct {
	// Fleet is the cluster-wide worker count — in distributed mode the
	// -workers flag means the whole fleet, not one process. It fixes the
	// chunk geometry and the fleet-wide slot budget, so every node of one
	// campaign must use the same value. <= 0 disables distribution.
	Fleet int

	// Owner is this node's stable identity (default "<hostname>-<pid>").
	// Restarting under the same owner reclaims the node's part shard and
	// leases instantly.
	Owner string

	// Coordinator is the lease endpoint base URL ("http://host:port") of an
	// avgid started with -dist-role=coordinator. Empty coordinates through
	// lease files under the journal directory instead — the zero-
	// infrastructure mode for workers sharing a filesystem.
	Coordinator string

	// LeaseTTL is how long a silent node keeps its chunks before the fleet
	// takes them over (default 10s).
	LeaseTTL time.Duration

	// coord, when set via UseCoordinator, arbitrates leases through an
	// in-process coordinator instead of files or HTTP — the avgid
	// coordinator role's own campaigns go through the same arbiter its
	// workers reach over /v1/dist/*.
	coord *dist.Coordinator
}

// UseCoordinator points the config at an in-process coordinator, taking
// precedence over both Coordinator (HTTP) and file leases.
func (d *DistConfig) UseCoordinator(c *DistCoordinator) { d.coord = c }

// leaser materialises the configured lease arbiter; nil lets the dist layer
// default to file leases under the journal directory.
func (d *DistConfig) leaser() dist.Leaser {
	if d.coord != nil {
		return d.coord
	}
	if d.Coordinator == "" {
		return nil
	}
	return dist.NewHTTPLeaser(d.Coordinator)
}

// NewDistCoordinator returns an empty lease coordinator, ready to Mount on
// an HTTP mux (cmd/avgid -dist-role=coordinator mounts one on the same mux
// that serves /v1/assess and /metrics).
func NewDistCoordinator() *dist.Coordinator { return dist.NewCoordinator() }

// DistCoordinator is the in-memory lease arbiter behind -dist-role=coordinator.
type DistCoordinator = dist.Coordinator

// DistAnnouncement is one fanned-out campaign of a coordinator's feed.
type DistAnnouncement = dist.Announcement

// NewDistClient returns a client of a coordinator's lease and fan-out
// endpoints (cmd/avgid -dist-role=worker polls one).
func NewDistClient(base string) *dist.HTTPLeaser { return dist.NewHTTPLeaser(base) }
