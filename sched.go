package avgi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"avgi/internal/campaign"
	"avgi/internal/dist"
	"avgi/internal/journal"
	"avgi/internal/obs"
)

// This file is the study-level campaign scheduler: a single-flight
// executor keyed by (structure, workload, mode, window) in front of a
// global worker budget shared by every campaign of the study.
//
// Two problems it solves (see docs/SCHEDULING.md):
//
//  1. The old per-map caching had a check-then-act race: two concurrent
//     callers could both miss the cache and silently run the same
//     multi-thousand-fault campaign twice, double-announcing progress
//     totals. Single-flight makes the second caller block on the first
//     caller's in-flight result instead.
//
//  2. Experiments used to walk (structure, workload) pairs serially, so
//     each campaign's tail drained the worker pool to idle before the
//     next pair started. With all campaigns drawing from one
//     campaign.Budget, Prefetch overlaps pairs: one campaign's tail is
//     filled with the next campaign's head, keeping every core busy
//     across the whole grid — how the paper's 726k-injection evaluation
//     saturates its 192-core servers.
//
// Determinism: results are byte-identical to serial execution. Fault
// lists are deterministic per (structure, workload, seed), and each
// campaign worker owns a fixed contiguous chunk of its list, so only
// scheduling order changes — never outcomes.

// campaignKey identifies one deduplicated campaign execution. The window
// is part of the key because AVGI-mode campaigns with different ERT
// windows simulate different amounts of the program (exhaustive and HVF
// runs use window 0).
type campaignKey struct {
	structure, workload string
	mode                campaign.Mode
	window              uint64
}

// schedObs holds the scheduler's telemetry instruments; the zero value
// (observer absent) disables everything.
type schedObs struct {
	inflight *obs.Gauge   // campaigns currently executing
	dedup    *obs.Counter // callers served by an existing flight
	live     atomic.Int64

	// Journal instruments (registered only when the study journals).
	jAppends *obs.Counter // results appended to journal shards
	jHits    *obs.Counter // campaigns served entirely from the journal
	jResumed *obs.Counter // journalled fault results reused from shards
	jErrors  *obs.Counter // shard I/O failures (first per writer + failed opens)
}

// register wires the scheduler instruments into a registry; journal
// counters are registered only when journaled is true.
func (so *schedObs) register(reg *obs.Registry, machine string, journaled bool) {
	lb := map[string]string{"machine": machine}
	so.inflight = reg.Gauge("avgi_sched_inflight_campaigns",
		"campaigns currently executing under the scheduler", lb)
	so.dedup = reg.Counter("avgi_sched_dedup_hits_total",
		"campaign requests coalesced onto an already in-flight or completed execution", lb)
	if journaled {
		so.jAppends = reg.Counter("avgi_journal_appends_total",
			"per-fault results appended to journal shards", lb)
		so.jHits = reg.Counter("avgi_journal_hits_total",
			"campaigns loaded entirely from fully journalled shards", lb)
		so.jResumed = reg.Counter("avgi_journal_resumed_faults_total",
			"journalled fault results reused instead of re-simulated", lb)
		so.jErrors = reg.Counter("avgi_journal_errors_total",
			"journal shard I/O failures: first write/sync error per writer plus failed shard opens", lb)
	}
}

// initSched wires the scheduler state into a freshly built study. Flights
// are retained for the study's lifetime: experiments revisit the same
// (structure, workload) pairs many times and the grid is bounded.
func (s *Study) initSched() {
	s.flights = newFlightMap[campaignKey](true)
	s.budget = campaign.NewBudget(s.Cfg.Workers)
	if o := s.Cfg.Obs; o != nil && o.Metrics != nil {
		reg := o.Metrics
		lb := map[string]string{"machine": s.Cfg.Machine.Name}
		reg.Gauge("avgi_sched_budget_capacity",
			"study-wide worker budget shared by all concurrent campaigns", lb).
			Set(float64(s.budget.Cap()))
		s.budget.SetGauge(reg.Gauge("avgi_sched_budget_busy",
			"campaign workers currently drawing from the study budget", lb))
		s.sched.register(reg, s.Cfg.Machine.Name, s.Cfg.JournalDir != "")
	}
}

// Budget returns the study's global worker budget, for callers that run
// ad-hoc campaigns (e.g. the multi-bit ablation) and want them to share
// the study's capacity instead of oversubscribing it.
func (s *Study) Budget() *campaign.Budget { return s.budget }

// runCampaign is the single-flight campaign executor: exactly one
// execution per key, concurrent callers coalesce onto it, results are
// cached for the study's lifetime. A campaign that panics is evicted from
// the flight map before the panic propagates, so a transient failure
// (bad fault list, broken runner) never poisons its key: the next caller
// re-executes instead of receiving the dead flight's nil result forever.
func (s *Study) runCampaign(structure, workload string, mode Mode, window uint64) []CampaignResult {
	key := campaignKey{structure, workload, mode, window}
	res, coalesced := s.flights.do(key, func() []CampaignResult {
		if s.sched.inflight != nil {
			s.sched.inflight.Set(float64(s.sched.live.Add(1)))
			defer func() { s.sched.inflight.Set(float64(s.sched.live.Add(-1))) }()
		}
		r := s.runners[workload]
		var sp *obs.SpanRef
		if mode == campaign.ModeAVGI {
			sp = s.Cfg.Obs.Span("assess "+structure+" "+workload, "estimator",
				map[string]string{"structure": structure, "workload": workload, "window": fmt.Sprint(window)})
		}
		// Deferred (not straight-line) so a panicking campaign still closes
		// its span — otherwise one failure left the trace permanently open.
		defer sp.End()
		res, _ := s.exec().run(r, structure, workload, s.faultsFor(structure, workload),
			mode, window, s.budget)
		return res
	})
	if coalesced && s.sched.dedup != nil {
		s.sched.dedup.Inc()
	}
	return res
}

// exec assembles the study's journal-consulting campaign executor.
func (s *Study) exec() *journalExec {
	return &journalExec{
		journal: s.journal,
		resume:  s.Cfg.Resume,
		machine: s.Cfg.Machine.Name,
		variant: s.Cfg.Machine.Variant.String(),
		seed:    s.Cfg.SeedBase,
		sync:    s.Cfg.Fsync,
		dist:    s.Cfg.Dist,
		obs:     s.Cfg.Obs,
		sched:   &s.sched,
	}
}

// journalExec runs one campaign through the durable journal — the shared
// service core under both the study scheduler and the avgid assessment
// server. When the executor has a journal, a fully journalled pair loads
// instead of re-simulating, a partial shard resumes from its missing fault
// indices, and every freshly completed chunk is appended and fsynced. The
// journal is strictly best-effort: an unwritable shard degrades to an
// unjournalled run, never a failed campaign — but since Writer errors are
// sticky and otherwise invisible until Close, the first failure per shard
// is logged and counted (avgi_journal_errors_total) the moment it happens.
type journalExec struct {
	journal *journal.Journal // nil = unjournalled
	resume  bool
	machine string
	variant string
	seed    int64
	sync    journal.SyncPolicy
	dist    *DistConfig // non-nil with Fleet > 0 = distributed execution
	obs     *Observer
	sched   *schedObs
}

// run executes one campaign under budget and returns its results plus the
// number of fault results reused from the journal; resumed == len(faults)
// means a full cache hit with zero simulation.
func (je *journalExec) run(r *Runner, structure, workload string, faults []Fault,
	mode Mode, window uint64, budget *campaign.Budget) (res []CampaignResult, resumed int) {
	if je.journal == nil {
		return r.RunBudget(faults, mode, window, budget), 0
	}
	key := journal.Key{Structure: structure, Workload: workload, Mode: mode.String(), Window: window}
	bind := journal.Binding{
		Machine:     je.machine,
		Variant:     je.variant,
		ProgramHash: journal.HashProgram(r.Prog),
		Seed:        je.seed,
		Faults:      len(faults),
	}
	if je.dist != nil && je.dist.Fleet > 0 {
		if res, resumed, ok := je.runDist(r, structure, workload, key, bind, faults, mode, window, budget); ok {
			return res, resumed
		}
		// A failed distributed run (unwritable part shard, broken lease
		// transport) degrades to plain local execution below — the node
		// stops contributing to the fleet but still answers its caller.
	}
	var prior map[int]CampaignResult
	if je.resume {
		var err error
		prior, err = je.journal.Load(key, bind)
		if err != nil {
			// Mismatched or corrupt header: the shard belongs to a
			// different configuration or build. Refuse its records and
			// re-simulate (the Writer below truncates it).
			je.obs.Logf("journal: %s/%s %s: %v; re-simulating", structure, workload, mode, err)
			prior = nil
		}
		if len(prior) > 0 && je.sched.jResumed != nil {
			je.sched.jResumed.Add(uint64(len(prior)))
		}
		if len(prior) == len(faults) {
			// Full hit: the pair is already durable, no simulation at all.
			if je.sched.jHits != nil {
				je.sched.jHits.Inc()
			}
			out := make([]CampaignResult, len(faults))
			for i := range out {
				out[i] = prior[i]
			}
			return out, len(faults)
		}
	}
	w, err := je.journal.Writer(key, bind, je.resume && len(prior) > 0)
	if err != nil {
		je.obs.Logf("journal: %s/%s %s: %v; campaign will run unjournalled", structure, workload, mode, err)
		if je.sched.jErrors != nil {
			je.sched.jErrors.Inc()
		}
		return r.RunBudgetResume(faults, mode, window, budget, prior, nil), len(prior)
	}
	w.SetSyncPolicy(je.sync)
	// Surface the first I/O failure when it strikes, not at Close: a
	// long-running service would otherwise simulate for hours believing it
	// was journalling. The writer disables itself after the first error, so
	// the hook fires at most once per shard.
	w.OnError(func(err error) {
		je.obs.Logf("journal: %s/%s %s: write failed: %v; shard writes disabled, campaign continues unjournalled",
			structure, workload, mode, err)
		if je.sched.jErrors != nil {
			je.sched.jErrors.Inc()
		}
	})
	res = r.RunBudgetResume(faults, mode, window, budget, prior,
		&journalSink{w: w, prior: prior, appends: je.sched.jAppends})
	if err := w.Close(); err != nil {
		je.obs.Logf("journal: %s/%s %s: %v; shard may be incomplete", structure, workload, mode, err)
	}
	return res, len(prior)
}

// runDist executes one campaign as this node's share of a distributed
// fleet (see internal/dist and docs/DISTRIBUTED.md). ok=false means the
// distributed run failed and the caller should fall back to plain local
// execution; resumed counts the fault results that were already durable
// somewhere in the fleet's journal before this run.
func (je *journalExec) runDist(r *Runner, structure, workload string,
	key journal.Key, bind journal.Binding, faults []Fault,
	mode Mode, window uint64, budget *campaign.Budget) (res []CampaignResult, resumed int, ok bool) {
	prior, err := je.journal.LoadAll(key, bind)
	if err != nil {
		prior = nil
	}
	if len(prior) > 0 && je.sched.jResumed != nil {
		je.sched.jResumed.Add(uint64(len(prior)))
	}
	if len(prior) == len(faults) && je.sched.jHits != nil {
		je.sched.jHits.Inc()
	}
	res, err = dist.Run(dist.Config{
		Journal:      je.journal,
		Leaser:       je.dist.leaser(),
		Owner:        je.dist.Owner,
		Fleet:        je.dist.Fleet,
		LocalWorkers: budget.Cap(),
		TTL:          je.dist.LeaseTTL,
		Sync:         je.sync,
		Obs:          je.obs,
	}, r, faults, key, bind, mode, window)
	if err != nil {
		je.obs.Logf("dist: %s/%s %s: %v; falling back to local execution", structure, workload, mode, err)
		if je.sched.jErrors != nil {
			je.sched.jErrors.Inc()
		}
		return nil, 0, false
	}
	// Per-node append counts live on avgi_dist_faults_total (this node may
	// have simulated only part of the missing work; the rest of the fleet
	// journalled the remainder into its own part shards).
	return res, len(prior), true
}

// journalSink appends each freshly simulated chunk to the campaign's shard
// and fsyncs it, bounding crash loss to in-flight chunks.
type journalSink struct {
	w       *journal.Writer
	prior   map[int]CampaignResult
	appends *obs.Counter
}

func (js *journalSink) ChunkDone(lo, hi int, results []CampaignResult) {
	n := uint64(0)
	for i := lo; i < hi; i++ {
		if _, ok := js.prior[i]; ok {
			continue // already durable from a previous run
		}
		js.w.Append(i, results[i])
		n++
	}
	js.w.Sync()
	if js.appends != nil && n > 0 {
		js.appends.Add(n)
	}
}

// Prefetch dispatches the campaigns of every (structure, workload) pair in
// the given mode concurrently under the study's worker budget and blocks
// until all have completed. Pairs already cached (or in flight) coalesce
// for free, so prefetching is always safe to layer in front of a serial
// consumption loop. mode must be ModeExhaustive or ModeHVF — AVGI-mode
// campaigns need per-structure windows; use PrefetchAVGI.
func (s *Study) Prefetch(structures, workloads []string, mode Mode) {
	if mode == campaign.ModeAVGI {
		panic("avgi: Prefetch cannot derive AVGI windows; use PrefetchAVGI")
	}
	var wg sync.WaitGroup
	for _, structure := range structures {
		for _, w := range workloads {
			wg.Add(1)
			go func(structure, w string) {
				defer wg.Done()
				s.runCampaign(structure, w, mode, 0)
			}(structure, w)
		}
	}
	wg.Wait()
}

// PrefetchAVGI overlaps AVGI-mode campaigns across pairs, deriving each
// structure's ERT stop window from the estimator exactly as AVGIRun does.
func (s *Study) PrefetchAVGI(est *Estimator, structures, workloads []string) {
	var wg sync.WaitGroup
	for _, structure := range structures {
		for _, w := range workloads {
			wg.Add(1)
			go func(structure, w string) {
				defer wg.Done()
				window := est.WindowFor(structure, s.runners[w].Golden.Cycles)
				s.runCampaign(structure, w, campaign.ModeAVGI, window)
			}(structure, w)
		}
	}
	wg.Wait()
}

// RunAll prefetches the full (structure × workload) grid of the study in
// the given mode — the bulk-dispatch entry point for experiments that
// consume every pair (Table II, Fig. 9, Fig. 10).
func (s *Study) RunAll(mode Mode) {
	s.Prefetch(s.Cfg.Structures, s.WorkloadNames(), mode)
}
