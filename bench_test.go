package avgi

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (DESIGN.md §4 maps each to its experiment), plus substrate
// micro-benchmarks. Each figure benchmark regenerates the corresponding
// table from a shared study and reports the headline scalar the paper's
// version of that figure argues (speedup, accuracy delta, correlation).
//
// The shared study uses reduced sample sizes so `go test -bench=.` stays
// laptop-friendly; cmd/avgi runs the same experiments at full scale.

import (
	"math"
	"sync"
	"testing"

	"avgi/internal/campaign"
	"avgi/internal/core"
	"avgi/internal/imm"
	"avgi/internal/isa"
	"avgi/internal/stats"
	"avgi/internal/trace"
)

var (
	benchOnce  sync.Once
	benchStudy *Study
	benchEst   *Estimator
)

func getBenchStudy(b *testing.B) (*Study, *Estimator) {
	b.Helper()
	benchOnce.Do(func() {
		var wls []Workload
		for _, n := range []string{"sha", "crc32", "qsort"} {
			w, err := WorkloadByName(n)
			if err != nil {
				panic(err)
			}
			wls = append(wls, w)
		}
		s, err := NewStudy(StudyConfig{
			Machine:            ConfigA72(),
			Workloads:          wls,
			FaultsPerStructure: 48,
			SeedBase:           13,
		})
		if err != nil {
			panic(err)
		}
		benchStudy = s
		benchEst = s.TrainEstimator()
	})
	return benchStudy, benchEst
}

// --- substrate micro-benchmarks ---

// BenchmarkGoldenRun measures raw simulator throughput; the ReportMetric
// value (cycles/sec) feeds the Table II days model.
func BenchmarkGoldenRun(b *testing.B) {
	cfg := ConfigA72()
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewMachine(cfg, "sha")
		if err != nil {
			b.Fatal(err)
		}
		res := m.Run(RunOptions{})
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkMachineClone measures the checkpoint-fork cost that both the
// accelerated SFI baseline and AVGI pay per fault.
func BenchmarkMachineClone(b *testing.B) {
	m, err := NewMachine(ConfigA72(), "sha")
	if err != nil {
		b.Fatal(err)
	}
	m.Run(RunOptions{StopAtCycle: 5000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := m.Clone()
		_ = c
	}
}

// BenchmarkSingleFaultExhaustive measures one traditional end-to-end SFI
// run (fork, flip, simulate to completion, classify).
func BenchmarkSingleFaultExhaustive(b *testing.B) {
	r, err := NewRunner(ConfigA72(), "sha")
	if err != nil {
		b.Fatal(err)
	}
	faults := r.FaultList("RF", 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(faults, ModeExhaustive, 0, 1)
	}
}

// BenchmarkSingleFaultAVGI measures one AVGI-mode run for comparison; the
// per-op ratio against BenchmarkSingleFaultExhaustive is the wall-clock
// realisation of the Table II speedup for this structure.
func BenchmarkSingleFaultAVGI(b *testing.B) {
	r, err := NewRunner(ConfigA72(), "sha")
	if err != nil {
		b.Fatal(err)
	}
	faults := r.FaultList("RF", 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(faults, ModeAVGI, 1500, 1)
	}
}

// BenchmarkIMMClassifier measures the Table I / Fig. 2 decision procedure.
func BenchmarkIMMClassifier(b *testing.B) {
	g := trace.Record{Cycle: 10, PC: 0x1000, Word: isa.Encode(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 2, Rs2: 3}), HasDest: true, Value: 7}
	f := g
	f.Word = isa.Encode(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 6, Rs2: 3})
	f.Value = 9
	in := imm.Inputs{
		Dev:     trace.Deviation{Kind: trace.DevRecord, Golden: g, Faulty: f},
		Variant: isa.V64,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if imm.Classify(in) != imm.OFS {
			b.Fatal("misclassified")
		}
	}
}

// --- one benchmark per paper table/figure ---

// BenchmarkFig1_ACEvsSFI regenerates Fig. 1 and reports the mean ACE/SFI
// overestimation factor (the paper observes 1.2x-3x).
func BenchmarkFig1_ACEvsSFI(b *testing.B) {
	s, _ := getBenchStudy(b)
	s.Fig1() // warm caches
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rs []float64
		for _, w := range s.WorkloadNames() {
			sfi := s.GroundTruthAVF("RF", w).Total()
			if sfi > 0 {
				rs = append(rs, ACEAnalyzeRF(s.Runner(w))/sfi)
			}
		}
		ratio = stats.Mean(rs)
	}
	b.ReportMetric(ratio, "ACE/SFI")
}

// BenchmarkFig3_IMMDistribution regenerates the Fig. 3 tables and reports
// the cross-workload IMM-distribution spread for the L1I data array (the
// uniformity insight: smaller is more uniform).
func BenchmarkFig3_IMMDistribution(b *testing.B) {
	s, _ := getBenchStudy(b)
	s.Fig3()
	var spread float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Fig3()
		dist := s.IMMDistribution("L1I (Data)")
		spread = 0
		for _, class := range imm.Classes {
			var xs []float64
			for _, d := range dist {
				xs = append(xs, d[class])
			}
			if sd := stats.StdDev(xs); sd > spread {
				spread = sd
			}
		}
	}
	b.ReportMetric(spread, "maxStddev")
}

// BenchmarkFig4_EffectPerIMM regenerates Fig. 4 (effect probability per IMM
// for L1I) and reports the worst cross-workload standard deviation (the
// paper observes 0.1%-2.4%).
func BenchmarkFig4_EffectPerIMM(b *testing.B) {
	s, _ := getBenchStudy(b)
	s.Fig4()
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		per := s.EffectPerIMM("L1I (Data)")
		worst = 0
		for _, class := range imm.Classes {
			for e := 0; e < 3; e++ {
				var xs []float64
				for _, m := range per {
					if p, ok := m[class]; ok {
						xs = append(xs, p[e])
					}
				}
				if sd := stats.StdDev(xs); sd > worst {
					worst = sd
				}
			}
		}
	}
	b.ReportMetric(worst, "maxStddev")
}

// BenchmarkFig5_Weights regenerates the trained weight tables.
func BenchmarkFig5_Weights(b *testing.B) {
	s, _ := getBenchStudy(b)
	s.Fig5()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Fig5()) == 0 {
			b.Fatal("no tables")
		}
	}
}

// BenchmarkFig7_ESCPrediction regenerates Fig. 7 and reports the Pearson
// correlation between real and predicted ESC counts for the L1D data array.
func BenchmarkFig7_ESCPrediction(b *testing.B) {
	s, _ := getBenchStudy(b)
	s.Fig7()
	var r float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		td := s.TrainingData(Fig7Structures)
		model := core.TrainESC(td.Results, td.Exposure)
		var real, pred []float64
		for _, w := range s.WorkloadNames() {
			sum := campaign.Summarize(s.Exhaustive("L1D (Data)", w))
			real = append(real, float64(sum.ByIMM[imm.ESC]))
			pred = append(pred, model.Predict("L1D (Data)", td.Exposure["L1D (Data)"][w], sum.Total, sum.Benign))
		}
		r = stats.Pearson(real, pred)
	}
	b.ReportMetric(r, "pearson")
}

// BenchmarkFig8_InclusiveExclusive regenerates Fig. 8 and reports the
// largest inclusive-vs-exclusive IMM fraction difference (the paper shows
// the two are virtually identical).
func BenchmarkFig8_InclusiveExclusive(b *testing.B) {
	s, est := getBenchStudy(b)
	s.Fig8(est)
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, w := range s.WorkloadNames() {
			inc := campaign.Summarize(s.Exhaustive("L1I (Data)", w)).IMMFractions()
			res, _ := s.AVGIRun(est, "L1I (Data)", w)
			exc := campaign.Summarize(res).IMMFractions()
			for c, f := range inc {
				if d := math.Abs(f - exc[c]); d > worst {
					worst = d
				}
			}
		}
	}
	b.ReportMetric(worst, "maxDelta")
}

// BenchmarkFig9_ResidencyCDF regenerates the residency analysis and reports
// the register file's derived ERT window in cycles (Table II column 1).
func BenchmarkFig9_ResidencyCDF(b *testing.B) {
	s, est := getBenchStudy(b)
	s.Fig9(est)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Fig9(est)
	}
	b.ReportMetric(float64(est.ERT["RF"].Cycles), "RFwindow")
}

// BenchmarkTable2_Speedup regenerates Table II and reports the whole-CPU
// SFI/AVGI speedup (the paper reports 22x for the 64-bit CPU; the absolute
// value here depends on the cycle-count scaling, the ordering across
// structures is the reproduced shape).
func BenchmarkTable2_Speedup(b *testing.B) {
	s, est := getBenchStudy(b)
	s.TimingRows(est)
	var total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.TimingRows(est)
		var sfi, avgi uint64
		for _, r := range rows {
			sfi += r.SFICycles
			avgi += r.AVGICycles
		}
		total = float64(sfi) / float64(avgi)
	}
	b.ReportMetric(total, "CPUspeedup")
}

// BenchmarkFig10_Accuracy regenerates the Fig. 10 accuracy comparison for
// the register file and reports the worst |AVF_real - AVF_AVGI| across
// workloads (leave-one-out).
func BenchmarkFig10_Accuracy(b *testing.B) {
	s, _ := getBenchStudy(b)
	s.Fig10("RF")
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, w := range s.WorkloadNames() {
			truth := s.GroundTruthAVF("RF", w)
			est := s.TrainEstimator(w)
			results, window := s.AVGIRun(est, "RF", w)
			a := est.AssessResults(s.Runner(w), "RF", results, window)
			if d := math.Abs(a.AVF.Total() - truth.Total()); d > worst {
				worst = d
			}
		}
	}
	b.ReportMetric(worst, "maxAVFdelta")
}

// BenchmarkFig11_FIT regenerates the FIT table and reports the whole-chip
// relative FIT error of the methodology (the paper reports 0.2%).
func BenchmarkFig11_FIT(b *testing.B) {
	s, est := getBenchStudy(b)
	s.Fig11()
	var relErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var chipReal, chipEst core.FIT
		anyRunner := s.Runner(s.WorkloadNames()[0])
		for _, structure := range s.Cfg.Structures {
			bits := anyRunner.BitCounts[structure]
			for _, w := range s.WorkloadNames() {
				truth := s.GroundTruthAVF(structure, w)
				results, window := s.AVGIRun(est, structure, w)
				a := est.AssessResults(s.Runner(w), structure, results, window)
				chipReal = chipReal.Add(core.FITOf(truth, bits))
				chipEst = chipEst.Add(core.FITOf(a.AVF, bits))
			}
		}
		if chipReal.Total() > 0 {
			relErr = math.Abs(chipReal.Total()-chipEst.Total()) / chipReal.Total()
		}
	}
	b.ReportMetric(relErr, "chipFITrelErr")
}

// BenchmarkMotivation_PVFvsAVF regenerates the introduction's pitfall
// comparison and reports the mean ISA-level-PVF / microarch-AVF
// overestimation factor.
func BenchmarkMotivation_PVFvsAVF(b *testing.B) {
	s, _ := getBenchStudy(b)
	s.Motivation()
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rs []float64
		for _, w := range s.WorkloadNames() {
			sum, err := ArchLevelCampaign(s.Cfg.Machine, w, 60, 3)
			if err != nil {
				b.Fatal(err)
			}
			if avf := s.GroundTruthAVF("RF", w).Total(); avf > 0 {
				rs = append(rs, sum.PVF()/avf)
			}
		}
		ratio = stats.Mean(rs)
	}
	b.ReportMetric(ratio, "PVF/AVF")
}

// BenchmarkMultiBitAblation runs the Section VII.A single-vs-multi-bit
// sweep and reports the 4-bit/1-bit AVF amplification.
func BenchmarkMultiBitAblation(b *testing.B) {
	s, _ := getBenchStudy(b)
	var amp float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		avfFor := func(width int) float64 {
			var xs []float64
			for _, w := range s.WorkloadNames() {
				r := s.Runner(w)
				faults := r.MultiBitFaultList("RF", 40, width, 23)
				sum := campaign.Summarize(r.Run(faults, campaign.ModeExhaustive, 0, 0))
				xs = append(xs, core.AVFFromEffects(sum).Total())
			}
			return stats.Mean(xs)
		}
		one := avfFor(1)
		if one > 0 {
			amp = avfFor(4) / one
		}
	}
	b.ReportMetric(amp, "AVF4b/1b")
}

// BenchmarkFig12_CaseStudy32 runs the Section VI case study on the 32-bit
// machine and reports the worst RF AVF delta there.
func BenchmarkFig12_CaseStudy32(b *testing.B) {
	var wls []Workload
	for _, n := range []string{"sha", "crc32"} {
		w, err := WorkloadByName(n)
		if err != nil {
			b.Fatal(err)
		}
		wls = append(wls, w)
	}
	s, err := NewStudy(StudyConfig{
		Machine:            ConfigA15(),
		Workloads:          wls,
		Structures:         Fig12Structures,
		FaultsPerStructure: 40,
		SeedBase:           17,
	})
	if err != nil {
		b.Fatal(err)
	}
	Fig12(s)
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, w := range s.WorkloadNames() {
			truth := s.GroundTruthAVF("RF", w)
			est := s.TrainEstimator(w)
			results, window := s.AVGIRun(est, "RF", w)
			a := est.AssessResults(s.Runner(w), "RF", results, window)
			if d := math.Abs(a.AVF.Total() - truth.Total()); d > worst {
				worst = d
			}
		}
	}
	b.ReportMetric(worst, "maxAVFdelta")
}
