package avgi

import (
	"reflect"
	"sync"
	"testing"

	"avgi/internal/campaign"
)

// schedTestConfig is the small overlapping-pair grid the scheduler tests
// drive: every goroutine walks all four pairs, so single-flight coalescing
// is exercised on every campaign.
var (
	schedWorkloads  = []string{"sha", "crc32"}
	schedStructures = []string{"RF", "ROB"}
)

const schedFaults = 16

func newSchedStudy(t *testing.T, obsv *Observer) *Study {
	t.Helper()
	s, err := NewStudy(StudyConfig{
		Machine:            ConfigA72(),
		Workloads:          pick(t, schedWorkloads...),
		Structures:         schedStructures,
		FaultsPerStructure: schedFaults,
		Workers:            4,
		SeedBase:           7,
		Obs:                obsv,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// counterValue finds one labelled counter series in the registry.
func counterValue(t *testing.T, reg *MetricsRegistry, name string, labels map[string]string) uint64 {
	t.Helper()
	for _, fam := range reg.Snapshot() {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Series {
			match := true
			for k, v := range labels {
				if s.Labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return s.Value
			}
		}
	}
	t.Fatalf("metric %s%v not found", name, labels)
	return 0
}

func gaugeValue(t *testing.T, reg *MetricsRegistry, name string) float64 {
	t.Helper()
	for _, fam := range reg.Snapshot() {
		if fam.Name == name && len(fam.Series) > 0 {
			return fam.Series[0].GaugeValue
		}
	}
	t.Fatalf("gauge %s not found", name)
	return 0
}

// TestConcurrentStudySingleFlight drives one Study from eight concurrent
// goroutines over overlapping (structure, workload) pairs in two modes and
// proves, under -race:
//
//   - each (structure, workload, mode, window) campaign executed exactly
//     once (obs fault counters equal the fault-list size, never a multiple),
//   - every other caller coalesced onto the in-flight execution (dedup
//     counter accounts for all remaining calls),
//   - per-pair progress totals never exceeded the fault-list size, and
//   - results are byte-identical to a serial run of the same study config.
func TestConcurrentStudySingleFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent + serial campaign grids in -short mode")
	}
	obsv := NewObserver(nil)
	s := newSchedStudy(t, obsv)

	const goroutines = 8
	type key struct{ structure, workload, mode string }
	results := make([]map[key][]CampaignResult, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mine := make(map[key][]CampaignResult)
			// Rotate the pair order per goroutine so callers collide on
			// different campaigns at different times.
			for i := 0; i < len(schedStructures)*len(schedWorkloads); i++ {
				j := (i + g) % (len(schedStructures) * len(schedWorkloads))
				structure := schedStructures[j%len(schedStructures)]
				workload := schedWorkloads[j/len(schedStructures)]
				mine[key{structure, workload, "exhaustive"}] = s.Exhaustive(structure, workload)
				mine[key{structure, workload, "hvf"}] = s.HVF(structure, workload)
			}
			results[g] = mine
		}(g)
	}
	wg.Wait()

	// All goroutines must have observed the same slices.
	for g := 1; g < goroutines; g++ {
		for k, res := range results[0] {
			got := results[g][k]
			if len(got) != len(res) || &got[0] != &res[0] {
				t.Fatalf("goroutine %d got a different result slice for %v", g, k)
			}
		}
	}

	// Exactly-once execution: the campaign layer counted each fault once.
	reg := obsv.Metrics
	for _, structure := range schedStructures {
		for _, workload := range schedWorkloads {
			for _, mode := range []string{"exhaustive", "hvf"} {
				n := counterValue(t, reg, "avgi_campaign_faults_total",
					map[string]string{"structure": structure, "workload": workload, "mode": mode})
				if n != schedFaults {
					t.Errorf("%s/%s/%s executed %d faults, want exactly %d (ran %.1fx)",
						structure, workload, mode, n, schedFaults, float64(n)/schedFaults)
				}
			}
		}
	}

	// The other 7 callers of each of the 8 campaigns coalesced.
	campaigns := uint64(len(schedStructures) * len(schedWorkloads) * 2)
	calls := uint64(goroutines) * campaigns
	if hits := counterValue(t, reg, "avgi_sched_dedup_hits_total", nil); hits != calls-campaigns {
		t.Errorf("dedup hits = %d, want %d", hits, calls-campaigns)
	}

	// Per-pair progress totals never inflated past the fault-list size.
	snap := obsv.Progress.Snapshot()
	if snap.DupAnnounces != 0 {
		t.Errorf("%d duplicate StartCampaign announcements reached Progress", snap.DupAnnounces)
	}
	for _, pp := range snap.Pairs {
		if pp.Total != schedFaults || pp.Done != schedFaults {
			t.Errorf("pair %s/%s/%s progress %d/%d, want %d/%d",
				pp.Structure, pp.Workload, pp.Mode, pp.Done, pp.Total, schedFaults, schedFaults)
		}
	}
	if want := int64(campaigns) * schedFaults; snap.FaultsDone != want || snap.FaultsTotal != want {
		t.Errorf("study progress %d/%d, want %d/%d", snap.FaultsDone, snap.FaultsTotal, want, want)
	}

	// Scheduler gauges drained.
	if v := gaugeValue(t, reg, "avgi_sched_inflight_campaigns"); v != 0 {
		t.Errorf("inflight gauge = %v at rest", v)
	}
	if v := gaugeValue(t, reg, "avgi_sched_budget_busy"); v != 0 {
		t.Errorf("budget busy gauge = %v at rest", v)
	}
	if v := gaugeValue(t, reg, "avgi_sched_budget_capacity"); v != 4 {
		t.Errorf("budget capacity gauge = %v, want 4", v)
	}

	// Determinism: a serial run of the same study config produces
	// byte-identical results and summaries.
	serial := newSchedStudy(t, nil)
	for _, structure := range schedStructures {
		for _, workload := range schedWorkloads {
			k := key{structure, workload, "exhaustive"}
			want := serial.Exhaustive(structure, workload)
			if !reflect.DeepEqual(results[0][k], want) {
				t.Errorf("%s/%s exhaustive results diverge from serial execution", structure, workload)
			}
			k = key{structure, workload, "hvf"}
			if !reflect.DeepEqual(results[0][k], serial.HVF(structure, workload)) {
				t.Errorf("%s/%s hvf results diverge from serial execution", structure, workload)
			}
			a := campaign.Summarize(results[0][key{structure, workload, "exhaustive"}])
			b := campaign.Summarize(want)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%s summaries diverge: %v vs %v", structure, workload, a, b)
			}
		}
	}
}

// TestPrefetchCoalescesWithSerialConsumers checks that layering Prefetch
// in front of the usual serial accessors is free: the prefetched grid is
// reused, nothing runs twice, and RunAll after the fact is a no-op.
func TestPrefetchCoalescesWithSerialConsumers(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign grid in -short mode")
	}
	obsv := NewObserver(nil)
	s := newSchedStudy(t, obsv)
	s.RunAll(ModeExhaustive)
	for _, structure := range schedStructures {
		for _, workload := range schedWorkloads {
			s.Exhaustive(structure, workload) // cached
		}
	}
	s.RunAll(ModeExhaustive) // fully coalesced
	for _, structure := range schedStructures {
		for _, workload := range schedWorkloads {
			n := counterValue(t, obsv.Metrics, "avgi_campaign_faults_total",
				map[string]string{"structure": structure, "workload": workload, "mode": "exhaustive"})
			if n != schedFaults {
				t.Errorf("%s/%s ran %d faults, want exactly %d", structure, workload, n, schedFaults)
			}
		}
	}
	if s.Budget().InUse() != 0 {
		t.Errorf("budget not drained: %d", s.Budget().InUse())
	}
}

func TestPrefetchAVGIModePanics(t *testing.T) {
	s := getStudy(t)
	defer func() {
		if recover() == nil {
			t.Error("Prefetch with ModeAVGI must panic (windows need an estimator)")
		}
	}()
	s.Prefetch([]string{"RF"}, []string{"sha"}, ModeAVGI)
}

// TestPanickedCampaignDoesNotPoisonStudy is the end-to-end regression test
// for the poisoned flight cache: runCampaign used to insert the flight
// before executing and, on panic, only close its done channel — the dead
// flight stayed cached, so every later request for that pair was served
// its nil result forever. Now a panicking campaign is evicted and the next
// call re-simulates and succeeds.
func TestPanickedCampaignDoesNotPoisonStudy(t *testing.T) {
	s := newSchedStudy(t, NewObserver(nil))
	// Break the pair's runner so the campaign panics inside the flight
	// (nil-runner dereference in the fault-list step), then restore it.
	saved := s.runners["sha"]
	delete(s.runners, "sha")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("campaign with a broken runner must panic")
			}
		}()
		s.Exhaustive("RF", "sha")
	}()
	s.runners["sha"] = saved

	res := s.Exhaustive("RF", "sha")
	if len(res) != schedFaults {
		t.Fatalf("retry after panic returned %d results, want %d — flight cache poisoned", len(res), schedFaults)
	}
	// And the healthy result is now cached like any other.
	again := s.Exhaustive("RF", "sha")
	if !reflect.DeepEqual(res, again) {
		t.Error("cached result after recovery diverges")
	}
}
