package avgi

import (
	"fmt"
	"sort"

	"avgi/internal/campaign"
	"avgi/internal/core"
	"avgi/internal/imm"
	"avgi/internal/journal"
)

// StudyConfig parameterises a full multi-workload, multi-structure study —
// the unit of work behind every table and figure of the paper.
type StudyConfig struct {
	// Machine is the microarchitecture under study.
	Machine MachineConfig
	// Workloads defaults to all thirteen benchmarks.
	Workloads []Workload
	// Structures defaults to the twelve Table II structures.
	Structures []string
	// FaultsPerStructure is the SFI sample size per (structure,
	// workload) pair; the paper uses 2,000 (2.88% error at 99%
	// confidence), the harness default is 400.
	FaultsPerStructure int
	// Workers is the study-wide worker budget (0 = all CPUs): the total
	// campaign parallelism shared by every concurrent campaign of the
	// study, not a per-campaign count. See docs/SCHEDULING.md.
	Workers int
	// SeedBase makes the whole study reproducible.
	SeedBase int64
	// Obs, when non-nil, receives telemetry from the whole study: phase
	// spans (golden runs, campaigns, estimator training/assessment),
	// campaign metrics and live progress. See internal/obs and
	// docs/OBSERVABILITY.md.
	Obs *Observer

	// ForkPolicy selects the per-fault fork mechanism for every campaign
	// in the study (default ForkSnapshot; see docs/CHECKPOINTING.md).
	ForkPolicy ForkPolicy

	// CheckpointInterval is the golden-run checkpoint spacing in cycles
	// under ForkSnapshot; 0 derives it from each workload's golden length.
	CheckpointInterval uint64

	// JournalDir, when non-empty, enables the durable result journal:
	// every campaign appends its completed per-fault Results as NDJSON
	// shards under this directory, fsynced per chunk, so a killed study
	// can be restarted without losing finished work. See
	// docs/ROBUSTNESS.md.
	JournalDir string

	// Resume makes the study consult existing journal shards before
	// dispatching a campaign: a fully journalled (structure, workload,
	// mode, window) pair is loaded instead of re-simulated, and a partial
	// shard resumes from its missing fault indices. Requires JournalDir.
	// Results are byte-identical to an uninterrupted run.
	Resume bool

	// Fsync selects the journal shard fsync cadence: SyncChunk (default),
	// SyncEvery or SyncOff. See docs/ROBUSTNESS.md.
	Fsync SyncPolicy

	// Dist, when non-nil with Fleet > 0, runs every campaign of the study
	// as this node's share of a distributed fleet sharding chunks across
	// processes (requires JournalDir; the journal directory — or the
	// configured coordinator — is the coordination substrate). Results and
	// the merged canonical shards are byte-identical to a single-process
	// run. See docs/DISTRIBUTED.md.
	Dist *DistConfig

	// Forensics, when non-nil, turns on per-fault outcome attribution:
	// every sampled fault is probed during its faulty run and its fate
	// (overwritten, squashed, evicted clean, logically masked, never
	// read, or visible — with first-divergence capture) is folded into
	// this explorer. See docs/OBSERVABILITY.md.
	Forensics *Explorer

	// ForensicsSample probes every Nth fault by stable fault ID (0 or 1 =
	// every fault). Skipped faults still count toward the explorer's
	// campaign totals.
	ForensicsSample int

	// EarlyExit ends each AVGI faulty window as soon as the fault is
	// provably dead (every latched site erased unread), instead of
	// running to the full ERT horizon. Classifications and summaries are
	// identical either way — only per-fault SimCycles shrink — so keep
	// the setting consistent across resumed runs of the same journal if
	// byte-identical shards matter. See campaign.Runner.EarlyExit.
	EarlyExit bool
}

func (c *StudyConfig) fill() {
	if len(c.Workloads) == 0 {
		c.Workloads = Workloads()
	}
	if len(c.Structures) == 0 {
		c.Structures = Structures()
	}
	if c.FaultsPerStructure == 0 {
		c.FaultsPerStructure = 400
	}
	if c.SeedBase == 0 {
		c.SeedBase = 1
	}
}

// Study owns golden runs and schedules campaigns: a single-flight
// executor deduplicates concurrent requests for the same
// (structure, workload, mode, window) campaign and caches its results for
// the study's lifetime, and a global worker budget shared by all in-flight
// campaigns keeps the whole (structure × workload) grid saturated (see
// docs/SCHEDULING.md and Prefetch/RunAll in sched.go).
type Study struct {
	Cfg StudyConfig

	runners map[string]*Runner
	budget  *campaign.Budget
	journal *journal.Journal
	flights *flightMap[campaignKey]

	sched schedObs
}

// NewStudy performs the golden run of every workload.
func NewStudy(cfg StudyConfig) (*Study, error) {
	cfg.fill()
	for _, s := range cfg.Structures {
		if err := validateStructure(s); err != nil {
			return nil, err
		}
	}
	st := &Study{
		Cfg:     cfg,
		runners: make(map[string]*Runner),
	}
	if cfg.Resume && cfg.JournalDir == "" {
		return nil, fmt.Errorf("study: Resume requires JournalDir")
	}
	if cfg.Dist != nil && cfg.Dist.Fleet > 0 && cfg.JournalDir == "" {
		return nil, fmt.Errorf("study: distributed campaigns require JournalDir (the shared coordination substrate)")
	}
	if cfg.JournalDir != "" {
		j, err := journal.Open(cfg.JournalDir)
		if err != nil {
			return nil, fmt.Errorf("study: %w", err)
		}
		st.journal = j
	}
	st.initSched()
	allGolden := cfg.Obs.Span("golden runs", "golden",
		map[string]string{"machine": cfg.Machine.Name, "workloads": fmt.Sprint(len(cfg.Workloads))})
	for _, w := range cfg.Workloads {
		sp := cfg.Obs.Span("golden "+w.Name, "golden", map[string]string{"workload": w.Name})
		r, err := campaign.NewRunner(cfg.Machine, w.Build(cfg.Machine.Variant))
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("study: %s: %w", w.Name, err)
		}
		r.Obs = cfg.Obs
		r.ForkPolicy = cfg.ForkPolicy
		r.CheckpointInterval = cfg.CheckpointInterval
		r.Forensics = cfg.Forensics
		r.ForensicsSample = cfg.ForensicsSample
		r.EarlyExit = cfg.EarlyExit
		r.PublishGolden()
		st.runners[w.Name] = r
	}
	allGolden.End()
	return st, nil
}

// Runner returns the campaign runner of one workload.
func (s *Study) Runner(workload string) *Runner { return s.runners[workload] }

// WorkloadNames returns the study's workloads in sorted order.
func (s *Study) WorkloadNames() []string {
	var ns []string
	for _, w := range s.Cfg.Workloads {
		ns = append(ns, w.Name)
	}
	sort.Strings(ns)
	return ns
}

// faultsFor builds the deterministic fault list for a pair.
func (s *Study) faultsFor(structure, workload string) []Fault {
	return s.runners[workload].FaultList(structure, s.Cfg.FaultsPerStructure, s.Cfg.SeedBase)
}

// Campaign runs (or returns the cached results of) one campaign through
// the study scheduler — the public entry point for driving a single
// (structure, workload) pair, e.g. a distributed worker's share of a
// fleet-wide campaign (cmd/avgi campaign). Window is the AVGI ERT stop
// window in cycles and must be zero for the other modes.
func (s *Study) Campaign(structure, workload string, mode Mode, window uint64) []CampaignResult {
	return s.runCampaign(structure, workload, mode, window)
}

// Exhaustive returns (running on first use, cached afterwards) the
// traditional end-to-end SFI results for one pair — the study's ground
// truth. Concurrent callers of the same pair coalesce onto a single
// execution (see runCampaign in sched.go).
func (s *Study) Exhaustive(structure, workload string) []CampaignResult {
	return s.runCampaign(structure, workload, campaign.ModeExhaustive, 0)
}

// HVF returns the stop-at-first-deviation results for one pair.
func (s *Study) HVF(structure, workload string) []CampaignResult {
	return s.runCampaign(structure, workload, campaign.ModeHVF, 0)
}

// AVGIRun executes the short AVGI-mode campaign for one pair under the
// estimator's ERT window, cached by window since several experiments
// revisit the same pair.
func (s *Study) AVGIRun(est *Estimator, structure, workload string) ([]CampaignResult, uint64) {
	window := est.WindowFor(structure, s.runners[workload].Golden.Cycles)
	return s.runCampaign(structure, workload, campaign.ModeAVGI, window), window
}

// TrainingData assembles the estimator's training input from the cached
// exhaustive campaigns over the given structures, excluding any workloads
// named in exclude (for leave-one-out evaluation).
func (s *Study) TrainingData(structures []string, exclude ...string) core.TrainingData {
	skip := make(map[string]bool, len(exclude))
	for _, w := range exclude {
		skip[w] = true
	}
	td := core.TrainingData{
		Results:     make(map[string]map[string][]campaign.Result),
		OutputSize:  make(map[string]int),
		TotalCycles: make(map[string]uint64),
		Exposure:    make(map[string]map[string]float64),
	}
	var wls []string
	for _, w := range s.Cfg.Workloads {
		if !skip[w.Name] {
			wls = append(wls, w.Name)
		}
	}
	// Overlap the training campaigns across the whole grid; the serial
	// loop below then only reads cached results.
	s.Prefetch(structures, wls, campaign.ModeExhaustive)
	for _, structure := range structures {
		td.Results[structure] = make(map[string][]campaign.Result)
		td.Exposure[structure] = make(map[string]float64)
		for _, w := range s.Cfg.Workloads {
			if skip[w.Name] {
				continue
			}
			td.Results[structure][w.Name] = s.Exhaustive(structure, w.Name)
			td.Exposure[structure][w.Name] = s.runners[w.Name].OutputExposure[structure]
		}
	}
	for _, w := range s.Cfg.Workloads {
		if skip[w.Name] {
			continue
		}
		r := s.runners[w.Name]
		td.OutputSize[w.Name] = len(r.Golden.Output)
		td.TotalCycles[w.Name] = r.Golden.Cycles
	}
	return td
}

// TrainEstimator trains the full methodology on the cached exhaustive
// campaigns of the study's structures, excluding the named workloads.
// (The span covers only the fitting step; the exhaustive training
// campaigns carry their own spans when run on first use.)
func (s *Study) TrainEstimator(exclude ...string) *Estimator {
	td := s.TrainingData(s.Cfg.Structures, exclude...)
	sp := s.Cfg.Obs.Span("train estimator", "estimator",
		map[string]string{"exclude": fmt.Sprint(exclude)})
	defer sp.End()
	return core.Train(td)
}

// GroundTruthAVF returns the exhaustive-SFI AVF for one pair.
func (s *Study) GroundTruthAVF(structure, workload string) AVF {
	return core.AVFFromEffects(campaign.Summarize(s.Exhaustive(structure, workload)))
}

// Summaries returns per-workload exhaustive summaries for a structure,
// overlapping the structure's campaigns across workloads.
func (s *Study) Summaries(structure string) map[string]CampaignSummary {
	s.Prefetch([]string{structure}, s.WorkloadNames(), campaign.ModeExhaustive)
	out := make(map[string]CampaignSummary)
	for _, w := range s.Cfg.Workloads {
		out[w.Name] = campaign.Summarize(s.Exhaustive(structure, w.Name))
	}
	return out
}

// IMMDistribution returns the Fig. 3 normalised IMM fractions per workload
// for one structure (over corruptions).
func (s *Study) IMMDistribution(structure string) map[string]map[IMM]float64 {
	out := make(map[string]map[IMM]float64)
	for w, sum := range s.Summaries(structure) {
		out[w] = sum.IMMFractions()
	}
	return out
}

// EffectPerIMM returns, per workload and IMM class, the conditional final
// effect distribution from exhaustive runs (Fig. 4).
func (s *Study) EffectPerIMM(structure string) map[string]map[IMM]core.EffectProbs {
	s.Prefetch([]string{structure}, s.WorkloadNames(), campaign.ModeExhaustive)
	out := make(map[string]map[IMM]core.EffectProbs)
	for _, w := range s.Cfg.Workloads {
		results := s.Exhaustive(structure, w.Name)
		per := make(map[IMM]core.EffectProbs)
		for _, class := range imm.Classes {
			var counts [3]float64
			total := 0.0
			for _, r := range results {
				if r.IMM == class && r.HasEffect {
					counts[r.Effect]++
					total++
				}
			}
			if total > 0 {
				per[class] = core.EffectProbs{counts[0] / total, counts[1] / total, counts[2] / total}
			}
		}
		out[w.Name] = per
	}
	return out
}
